package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"

	"repro/internal/gf"
	"repro/internal/rlnc"
	"repro/internal/token"
)

// scratch state shared across fuzz iterations: reusing one Packet and
// one buffer across decodes is exactly the hot-path usage pattern the
// Into/Append APIs exist for, so the fuzzer exercises storage-reuse
// bugs (stale slices, missed truncation) for free.
var (
	scratch    Packet
	scratchBuf []byte
)

// FuzzWireRoundTrip checks both halves of the codec contract:
//
//  1. decoder-first: any byte string the decoder accepts re-marshals to
//     the identical bytes (accepted encodings are canonical);
//  2. encoder-first: a packet built from the fuzz input survives
//     Marshal → Unmarshal unchanged.
func FuzzWireRoundTrip(f *testing.F) {
	rng := func() func() uint64 {
		s := uint64(0x9e3779b97f4a7c15)
		return func() uint64 { s += 0x9e3779b97f4a7c15; return s * 0xbf58476d1ce4e5b9 }
	}()
	seedCoded := NewCoded(3, 7, rlnc.Encode(1, 4, gf.RandomBitVec(12, rng))).Marshal()
	seedToken := NewToken(1, 2, token.Token{UID: token.NewUID(5, 6), Payload: gf.RandomBitVec(30, rng)}).Marshal()
	seedAck := NewAck(2, 9, Ack{
		Watermark: 4,
		Ranks:     []GenRank{{Gen: 4, Rank: 3}, {Gen: 5, Rank: 0}},
		Peers:     []PeerMark{{Node: 0, Watermark: 4}, {Node: 1, Watermark: 6}},
	}).Marshal()
	seedHello := NewHello(4, 1, Hello{Leaving: true, Peers: []uint32{0, 2, 5}}).Marshal()
	seedAnnounce := NewAnnounce(0, 3, Announce{Op: AnnouncePong, MsgID: 17, Addrs: []AddrEntry{
		{Node: 0, Addr: "127.0.0.1:9000"},
		{Node: 2, Addr: "[::1]:9002"},
	}}).Marshal()
	f.Add(seedCoded)
	f.Add(seedToken)
	f.Add(seedAck)
	f.Add(seedHello)
	f.Add(seedAnnounce)
	f.Add(NewAck(0, 0, Ack{}).Marshal())
	f.Add(NewHello(0, 0, Hello{}).Marshal())
	f.Add(NewAnnounce(0, 0, Announce{Op: AnnouncePing, MsgID: 1}).Marshal())
	f.Add([]byte{})
	f.Add([]byte{Version, byte(TypeCoded), 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Add(bytes.Repeat([]byte{0xff}, 40))

	f.Fuzz(func(t *testing.T, data []byte) {
		// Decoder-first.
		p, err := Unmarshal(data)
		if err == nil {
			out := p.Marshal()
			if !bytes.Equal(out, data) {
				t.Fatalf("accepted %x but re-marshaled %x", data, out)
			}
			if p.Bits() < 0 {
				t.Fatalf("negative Bits %d", p.Bits())
			}
		} else {
			// Every rejection must be classifiable by kind: ad-hoc error
			// strings are not an API, the wrapped sentinels are.
			if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrVersion) &&
				!errors.Is(err, ErrType) && !errors.Is(err, ErrMalformed) {
				t.Fatalf("rejection not wrapped in a wire sentinel: %v", err)
			}
		}

		// UnmarshalInto must accept and reject exactly the same inputs as
		// Unmarshal, including when its scratch packet carries stale
		// storage from a previous (different-typed) decode.
		intoErr := UnmarshalInto(&scratch, data)
		if (intoErr == nil) != (err == nil) {
			t.Fatalf("UnmarshalInto and Unmarshal disagree on %x: %v vs %v", data, intoErr, err)
		}
		if intoErr == nil {
			out := scratch.AppendTo(scratchBuf[:0])
			if !bytes.Equal(out, data) {
				t.Fatalf("scratch decode of %x re-marshaled %x", data, out)
			}
			scratchBuf = out
		}

		// Encoder-first: derive a structured packet from the raw input.
		if len(data) < 12 {
			return
		}
		sender := int(binary.LittleEndian.Uint32(data[0:4]) % (1 << 20))
		epoch := int(binary.LittleEndian.Uint32(data[4:8]) % (1 << 20))
		bits := int(data[8]) + int(data[9]) // 0..510
		body := data[12:]
		switch data[10] % 5 {
		case 0:
			k := bits / 2
			vec := bitsFrom(body, bits)
			p = NewCoded(sender, epoch, rlnc.Coded{K: k, Vec: vec})
		case 1:
			uid := token.UID(binary.LittleEndian.Uint64(data[0:8]))
			p = NewToken(sender, epoch, token.Token{UID: uid, Payload: bitsFrom(body, bits)})
		case 3:
			h := Hello{Leaving: data[11]&1 == 1}
			for i := 0; i+4 <= len(body) && i < 4*16; i += 4 {
				h.Peers = append(h.Peers, binary.LittleEndian.Uint32(body[i:i+4]))
			}
			p = NewHello(sender, epoch, h)
		case 4:
			a := Announce{
				Op:    AnnounceOp(data[11] % 4),
				MsgID: binary.LittleEndian.Uint64(data[0:8]),
			}
			for i := 0; i+5 <= len(body) && i < 5*16; i += 5 {
				alen := int(body[i+4]) % (MaxAddrBytes + 1)
				addr := make([]byte, alen)
				for j := range addr {
					addr[j] = 'a' + body[(i+j)%len(body)]%26
				}
				a.Addrs = append(a.Addrs, AddrEntry{
					Node: binary.LittleEndian.Uint32(body[i : i+4]),
					Addr: string(addr),
				})
			}
			p = NewAnnounce(sender, epoch, a)
		default:
			a := Ack{Watermark: uint32(data[11])}
			for i := 0; i+8 <= len(body) && i < 8*16; i += 8 {
				e := body[i : i+8]
				if i%16 == 0 {
					a.Ranks = append(a.Ranks, GenRank{
						Gen:  binary.LittleEndian.Uint32(e[0:4]),
						Rank: binary.LittleEndian.Uint32(e[4:8]),
					})
				} else {
					a.Peers = append(a.Peers, PeerMark{
						Node:      binary.LittleEndian.Uint32(e[0:4]),
						Watermark: binary.LittleEndian.Uint32(e[4:8]),
					})
				}
			}
			p = NewAck(sender, epoch, a)
		}
		got, err := Unmarshal(p.Marshal())
		if err != nil {
			t.Fatalf("marshal of valid packet rejected: %v", err)
		}
		if got.Env != p.Env || got.Bits() != p.Bits() {
			t.Fatalf("envelope or size changed: %+v -> %+v", p, got)
		}
		switch p.Env.Type {
		case TypeCoded:
			if got.Coded.K != p.Coded.K || !got.Coded.Vec.Equal(p.Coded.Vec) {
				t.Fatal("coded body changed")
			}
		case TypeToken:
			if !got.Token.Equal(p.Token) {
				t.Fatal("token body changed")
			}
		case TypeAck:
			if got.Ack.Watermark != p.Ack.Watermark ||
				len(got.Ack.Ranks) != len(p.Ack.Ranks) || len(got.Ack.Peers) != len(p.Ack.Peers) {
				t.Fatal("ack body changed")
			}
		case TypeHello:
			if got.Hello.Leaving != p.Hello.Leaving || len(got.Hello.Peers) != len(p.Hello.Peers) {
				t.Fatal("hello body changed")
			}
		case TypeAnnounce:
			if got.Announce.Op != p.Announce.Op || got.Announce.MsgID != p.Announce.MsgID ||
				len(got.Announce.Addrs) != len(p.Announce.Addrs) {
				t.Fatal("announce body changed")
			}
		}
		if !bytes.Equal(got.Marshal(), p.Marshal()) {
			t.Fatal("double marshal differs")
		}
	})
}

// bitsFrom builds an n-bit vector from fuzz bytes, zero-padded.
func bitsFrom(b []byte, n int) gf.BitVec {
	v := gf.NewBitVec(n)
	for i := 0; i < n && i/8 < len(b); i++ {
		if b[i/8]>>(uint(i)%8)&1 == 1 {
			v.Set(i, true)
		}
	}
	return v
}

// Package wire is the compact binary codec for the cluster and stream
// runtimes' protocol messages: network-coded packets (rlnc.Coded), raw
// tokens (token.Token, for the store-and-forward baseline), streaming
// progress acknowledgements (Ack), membership announcements (Hello),
// address-book exchanges for the socket transport (Announce), and a
// small envelope header carrying version, message type, sender and
// epoch.
//
// The codec is the serialization boundary between the synchronous
// simulator world (in-memory Message values whose cost is their Bits()
// accounting) and the asynchronous cluster world (byte slices on a
// Transport). Two invariants tie the worlds together:
//
//   - Marshal and Unmarshal round-trip exactly: Unmarshal(Marshal(p))
//     reproduces p, and Marshal(Unmarshal(b)) reproduces b for every b
//     the decoder accepts (enforced by FuzzWireRoundTrip). The decoder
//     rejects trailing bytes and nonzero spare bits so every accepted
//     byte string has exactly one packet value.
//
//   - Packet implements the simulator's Bits() accounting by delegating
//     to the wrapped message, so wire costs and simulator costs are
//     directly comparable. The fixed framing overhead (header plus
//     length fields) is reported separately by WireBytes; tests pin the
//     exact relation between the two.
//
// Wire layout (all integers little-endian):
//
//	offset  size  field
//	0       1     version (currently 1)
//	1       1     type (1 = coded, 2 = token, 3 = ack, 4 = hello, 5 = announce)
//	2       4     sender (uint32 node id)
//	6       4     epoch (uint32 sender-local sequence/round)
//
// followed by a type-specific body:
//
//	coded:    uint32 k, uint32 vecBits, ceil(vecBits/8) bytes (LSB-first)
//	token:    uint64 uid, uint32 payloadBits, ceil(payloadBits/8) bytes
//	ack:      uint32 watermark,
//	          uint32 nRanks,  nRanks × (uint32 gen, uint32 rank),
//	          uint32 nPeers,  nPeers × (uint32 node, uint32 watermark)
//	hello:    uint8 flags (0 = announce, 1 = leave; others rejected),
//	          uint32 nPeers,  nPeers × uint32 node
//	announce: uint8 op (0 = ping, 1 = pong, 2 = lookup, 3 = lookup-ok;
//	          others rejected), uint64 msgID,
//	          uint32 nAddrs, nAddrs × (uint32 node, uint16 addrLen,
//	          addrLen bytes "host:port", addrLen ≤ MaxAddrBytes)
//
// Wrap policy: Sender and Epoch are 32-bit on the wire and do NOT wrap.
// The constructors (NewCoded, NewToken, NewAck, NewHello) panic on a
// sender or epoch outside [0, MaxUint32] instead of silently truncating
// the int — aliasing epoch g with g+2^32 would corrupt ack and rank
// bookkeeping on long streams. Callers that stream more than 2^32
// generations must shard onto a fresh stream (internal/stream validates
// Config.Generations against MaxEpoch up front).
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/gf"
	"repro/internal/rlnc"
	"repro/internal/token"
)

// Version is the codec version byte emitted by Marshal and required by
// Unmarshal.
const Version = 1

// HeaderBytes is the size of the envelope header on the wire.
const HeaderBytes = 10

// HeaderBits is the envelope overhead in bits, for cost accounting that
// wants to charge framing on top of Packet.Bits().
const HeaderBits = HeaderBytes * 8

// MaxVecBits caps the bit length the decoder accepts for a coded vector
// or token payload. It is far above anything the experiments use and
// exists only to bound decoder work on adversarial input.
const MaxVecBits = 1 << 24

// Type discriminates the message kinds the codec carries.
type Type uint8

const (
	// TypeCoded is a network-coded packet: k, coefficient vector and
	// coded payload in one bit vector.
	TypeCoded Type = 1
	// TypeToken is a raw token: UID plus payload, the store-and-forward
	// baseline's unit of exchange.
	TypeToken Type = 2
	// TypeAck is a streaming progress acknowledgement: the sender's
	// per-generation rank summary plus its gossip view of every node's
	// delivery watermark, the control traffic that lets internal/stream
	// retire fully-decoded generations and advance the window.
	TypeAck Type = 3
	// TypeHello is a membership announcement: a joining (or gracefully
	// leaving) node tells peers it exists (or is going away) and shares
	// its current live-peer view, the control traffic that lets the
	// cluster and stream runtimes run with dynamic membership.
	TypeHello Type = 4
	// TypeAnnounce is the socket transport's address-book exchange: a
	// MsgID-correlated request/response pair (ping/pong for bootstrap,
	// lookup/lookup-ok for targeted address resolution) carrying
	// node-id → host:port entries. It is transport-level control — the
	// in-process transports never emit it, and the gossip runtimes
	// never see it (internal/udpnet consumes it in its read loop).
	TypeAnnounce Type = 5
)

// MaxAckEntries caps the list lengths the decoder accepts in an ack,
// hello or announce body. Like MaxVecBits it only bounds decoder work
// on adversarial input; real acks carry a handful of entries.
const MaxAckEntries = 1 << 16

// MaxAddrBytes caps one announce entry's host:port string. Far above
// any real address (a bracketed IPv6 literal with scope and port fits
// in well under 64 bytes); it exists to bound decoder work and keep
// the encoder honest (AppendTo panics beyond it).
const MaxAddrBytes = 255

// MaxSender and MaxEpoch are the largest envelope values the 32-bit
// wire fields can carry. The constructors panic beyond them rather
// than alias (see the wrap policy in the package comment).
const (
	MaxSender = 1<<32 - 1
	MaxEpoch  = 1<<32 - 1
)

var (
	// ErrTruncated is wrapped by errors for packets shorter than their
	// declared layout.
	ErrTruncated = errors.New("wire: truncated packet")
	// ErrVersion is wrapped by errors for unsupported version bytes.
	ErrVersion = errors.New("wire: unsupported version")
	// ErrType is wrapped by errors for unknown message types.
	ErrType = errors.New("wire: unknown message type")
	// ErrMalformed is wrapped by errors for packets that parse but
	// violate a structural invariant (length mismatch, trailing bytes,
	// nonzero spare bits, k exceeding the vector length).
	ErrMalformed = errors.New("wire: malformed packet")
)

// Envelope is the fixed packet header.
type Envelope struct {
	Version uint8
	Type    Type
	// Sender is the originating node id.
	Sender uint32
	// Epoch is a sender-local sequence or round number; the codec does
	// not interpret it.
	Epoch uint32
}

// GenRank is one entry of an ack's rank summary: the sender's span rank
// for one generation of its active window.
type GenRank struct {
	Gen  uint32
	Rank uint32
}

// PeerMark is one entry of an ack's gossip view: the highest delivery
// watermark the sender has learned for a node (its own or relayed).
type PeerMark struct {
	Node      uint32
	Watermark uint32
}

// Ack is the streaming control body. Watermark is the number of
// generations the sender has fully decoded and delivered in order;
// Ranks summarizes the sender's span rank per active generation; Peers
// is the sender's current view of every node's watermark, which spreads
// transitively (receivers merge pointwise maxima) so the cluster-wide
// minimum — the retirement frontier — converges at gossip speed.
type Ack struct {
	Watermark uint32
	Ranks     []GenRank
	Peers     []PeerMark
}

// Bits returns the body's information content under the simulator's
// accounting: the watermark plus each 2×uint32 list entry.
func (a Ack) Bits() int { return 32 + 64*(len(a.Ranks)+len(a.Peers)) }

// Hello is the membership control body. Leaving distinguishes a
// graceful departure announcement from a join/alive announcement;
// Peers is the sender's current live-peer view, which receivers merge
// into their own so membership spreads transitively at gossip speed.
type Hello struct {
	Leaving bool
	Peers   []uint32
}

// Bits returns the body's information content under the simulator's
// accounting: the flag byte plus one uint32 per listed peer.
func (h Hello) Bits() int { return 8 + 32*len(h.Peers) }

// AnnounceOp discriminates the four announce exchanges.
type AnnounceOp uint8

const (
	// AnnouncePing is a bootstrap request: "here is my address, tell me
	// yours". The body carries the sender's own advertised address.
	AnnouncePing AnnounceOp = 0
	// AnnouncePong answers a ping with the responder's address book.
	AnnouncePong AnnounceOp = 1
	// AnnounceLookup requests the addresses of specific node ids; its
	// entries carry the target ids with empty address strings.
	AnnounceLookup AnnounceOp = 2
	// AnnounceLookupOK answers a lookup with the entries the responder
	// could resolve (unknown targets are simply omitted).
	AnnounceLookupOK AnnounceOp = 3
)

// String returns the op's protocol name.
func (op AnnounceOp) String() string {
	switch op {
	case AnnouncePing:
		return "ping"
	case AnnouncePong:
		return "pong"
	case AnnounceLookup:
		return "lookup"
	case AnnounceLookupOK:
		return "lookup-ok"
	}
	return fmt.Sprintf("AnnounceOp(%d)", uint8(op))
}

// AddrEntry is one announce address-book entry: a node id bound to the
// host:port string peers should send its datagrams to. Lookup requests
// use an empty Addr as "resolve this id for me".
type AddrEntry struct {
	Node uint32
	Addr string
}

// Announce is the socket transport's control body: a request/response
// pair correlated by MsgID through the sender's inflight map (the
// D7024E pattern — the read loop parks no state, it just delivers the
// response to the channel registered under MsgID).
type Announce struct {
	Op    AnnounceOp
	MsgID uint64
	Addrs []AddrEntry
}

// Bits returns the body's information content under the simulator's
// accounting: op byte, 64-bit MsgID, and per entry a uint32 id, a
// uint16 length and the address bytes.
func (a Announce) Bits() int {
	bits := 8 + 64
	for _, e := range a.Addrs {
		bits += 48 + 8*len(e.Addr)
	}
	return bits
}

// Packet is one decoded protocol message: the envelope plus exactly one
// of the type-specific bodies (selected by Env.Type).
type Packet struct {
	Env Envelope
	// Coded is valid iff Env.Type == TypeCoded.
	Coded rlnc.Coded
	// Token is valid iff Env.Type == TypeToken.
	Token token.Token
	// Ack is valid iff Env.Type == TypeAck.
	Ack Ack
	// Hello is valid iff Env.Type == TypeHello.
	Hello Hello
	// Announce is valid iff Env.Type == TypeAnnounce.
	Announce Announce
}

// envelope builds the versioned header, enforcing the no-wrap policy:
// a sender or epoch the 32-bit wire fields cannot represent is a
// programming error (like marshaling an unknown type), not a wire
// condition, so it panics instead of aliasing value v with v+2^32.
func envelope(t Type, sender, epoch int) Envelope {
	// Compared in uint64 so the package still compiles where int is 32
	// bits (there the out-of-range half is simply unreachable).
	if sender < 0 || uint64(sender) > MaxSender {
		panic(fmt.Sprintf("wire: sender %d outside the 32-bit wire range", sender))
	}
	if epoch < 0 || uint64(epoch) > MaxEpoch {
		panic(fmt.Sprintf("wire: epoch %d outside the 32-bit wire range", epoch))
	}
	return Envelope{Version: Version, Type: t, Sender: uint32(sender), Epoch: uint32(epoch)}
}

// NewCoded wraps a coded message in a versioned envelope. It panics on
// a sender or epoch outside the 32-bit wire range (see the wrap policy
// in the package comment).
func NewCoded(sender, epoch int, c rlnc.Coded) Packet {
	return Packet{Env: envelope(TypeCoded, sender, epoch), Coded: c}
}

// NewToken wraps a raw token in a versioned envelope. It panics on a
// sender or epoch outside the 32-bit wire range.
func NewToken(sender, epoch int, t token.Token) Packet {
	return Packet{Env: envelope(TypeToken, sender, epoch), Token: t}
}

// NewAck wraps a streaming acknowledgement in a versioned envelope. It
// panics on a sender or epoch outside the 32-bit wire range.
func NewAck(sender, epoch int, a Ack) Packet {
	return Packet{Env: envelope(TypeAck, sender, epoch), Ack: a}
}

// NewHello wraps a membership announcement in a versioned envelope. It
// panics on a sender or epoch outside the 32-bit wire range.
func NewHello(sender, epoch int, h Hello) Packet {
	return Packet{Env: envelope(TypeHello, sender, epoch), Hello: h}
}

// NewAnnounce wraps an address-book exchange in a versioned envelope.
// It panics on a sender or epoch outside the 32-bit wire range.
func NewAnnounce(sender, epoch int, a Announce) Packet {
	return Packet{Env: envelope(TypeAnnounce, sender, epoch), Announce: a}
}

// Bits returns the wrapped message's size under the simulator's
// accounting (rlnc.Coded.Bits or token.Token.Bits), which is what makes
// wire costs comparable with dynnet.Metrics. Framing overhead is
// excluded; see HeaderBits and WireBytes.
func (p Packet) Bits() int {
	switch p.Env.Type {
	case TypeCoded:
		return p.Coded.Bits()
	case TypeToken:
		return p.Token.Bits()
	case TypeAck:
		return p.Ack.Bits()
	case TypeHello:
		return p.Hello.Bits()
	case TypeAnnounce:
		return p.Announce.Bits()
	}
	return 0
}

// WireBytes returns the exact marshaled size in bytes.
func (p Packet) WireBytes() int {
	switch p.Env.Type {
	case TypeCoded:
		return HeaderBytes + 8 + (p.Coded.Vec.Len()+7)/8
	case TypeToken:
		return HeaderBytes + 12 + (p.Token.Payload.Len()+7)/8
	case TypeAck:
		return HeaderBytes + 12 + 8*(len(p.Ack.Ranks)+len(p.Ack.Peers))
	case TypeHello:
		return HeaderBytes + 5 + 4*len(p.Hello.Peers)
	case TypeAnnounce:
		n := HeaderBytes + 13
		for _, e := range p.Announce.Addrs {
			n += 6 + len(e.Addr)
		}
		return n
	}
	return HeaderBytes
}

// Marshal serializes the packet into a fresh buffer. It panics on an
// envelope type the codec does not know (a programming error, not a
// wire condition).
func (p Packet) Marshal() []byte {
	return p.AppendTo(make([]byte, 0, p.WireBytes()))
}

// AppendTo appends the packet's serialization to buf and returns the
// extended slice, producing byte-for-byte the same encoding as Marshal.
// It performs no allocation when buf has WireBytes of spare capacity —
// the emission hot path hands it a recycled buffer (buf[:0]) so a
// steady-state packet round-trip reuses one allocation indefinitely.
// Like Marshal it panics on an unknown envelope type.
func (p Packet) AppendTo(buf []byte) []byte {
	out := buf
	out = append(out, p.Env.Version, byte(p.Env.Type))
	out = binary.LittleEndian.AppendUint32(out, p.Env.Sender)
	out = binary.LittleEndian.AppendUint32(out, p.Env.Epoch)
	switch p.Env.Type {
	case TypeCoded:
		out = binary.LittleEndian.AppendUint32(out, uint32(p.Coded.K))
		out = binary.LittleEndian.AppendUint32(out, uint32(p.Coded.Vec.Len()))
		out = p.Coded.Vec.AppendBytes(out)
	case TypeToken:
		out = binary.LittleEndian.AppendUint64(out, uint64(p.Token.UID))
		out = binary.LittleEndian.AppendUint32(out, uint32(p.Token.Payload.Len()))
		out = p.Token.Payload.AppendBytes(out)
	case TypeAck:
		out = binary.LittleEndian.AppendUint32(out, p.Ack.Watermark)
		out = binary.LittleEndian.AppendUint32(out, uint32(len(p.Ack.Ranks)))
		for _, r := range p.Ack.Ranks {
			out = binary.LittleEndian.AppendUint32(out, r.Gen)
			out = binary.LittleEndian.AppendUint32(out, r.Rank)
		}
		out = binary.LittleEndian.AppendUint32(out, uint32(len(p.Ack.Peers)))
		for _, pm := range p.Ack.Peers {
			out = binary.LittleEndian.AppendUint32(out, pm.Node)
			out = binary.LittleEndian.AppendUint32(out, pm.Watermark)
		}
	case TypeHello:
		var flags byte
		if p.Hello.Leaving {
			flags = 1
		}
		out = append(out, flags)
		out = binary.LittleEndian.AppendUint32(out, uint32(len(p.Hello.Peers)))
		for _, id := range p.Hello.Peers {
			out = binary.LittleEndian.AppendUint32(out, id)
		}
	case TypeAnnounce:
		a := p.Announce
		if a.Op > AnnounceLookupOK {
			panic(fmt.Sprintf("wire: marshal of unknown announce op %d", a.Op))
		}
		out = append(out, byte(a.Op))
		out = binary.LittleEndian.AppendUint64(out, a.MsgID)
		out = binary.LittleEndian.AppendUint32(out, uint32(len(a.Addrs)))
		for _, e := range a.Addrs {
			if len(e.Addr) > MaxAddrBytes {
				panic(fmt.Sprintf("wire: announce addr for node %d is %d bytes (max %d)", e.Node, len(e.Addr), MaxAddrBytes))
			}
			out = binary.LittleEndian.AppendUint32(out, e.Node)
			out = binary.LittleEndian.AppendUint16(out, uint16(len(e.Addr)))
			out = append(out, e.Addr...)
		}
	default:
		panic(fmt.Sprintf("wire: marshal of unknown type %d", p.Env.Type))
	}
	return out
}

// Unmarshal parses one packet, validating the version, type, declared
// lengths, spare bits and the absence of trailing bytes, so that
// Marshal(Unmarshal(b)) == b for every accepted b.
func Unmarshal(data []byte) (Packet, error) {
	var p Packet
	if err := UnmarshalInto(&p, data); err != nil {
		return Packet{}, err
	}
	return p, nil
}

// UnmarshalInto parses one packet into p, reusing p's body storage (the
// coded vector, token payload and ack entry slices) so a receive loop
// that decodes every packet into one per-node scratch Packet allocates
// nothing in steady state. It validates exactly what Unmarshal does and
// accepts exactly the same byte strings. On success only the body
// selected by the decoded envelope type is meaningful; the other bodies
// hold stale storage kept for reuse, and any previously decoded body is
// overwritten, so callers that retain decoded contents past the next
// UnmarshalInto call must copy them first. On error p's contents are
// unspecified (but safe to reuse).
func UnmarshalInto(p *Packet, data []byte) error {
	if len(data) < HeaderBytes {
		return fmt.Errorf("%w: %d bytes < %d-byte header", ErrTruncated, len(data), HeaderBytes)
	}
	env := Envelope{
		Version: data[0],
		Type:    Type(data[1]),
		Sender:  binary.LittleEndian.Uint32(data[2:6]),
		Epoch:   binary.LittleEndian.Uint32(data[6:10]),
	}
	if env.Version != Version {
		return fmt.Errorf("%w: %d", ErrVersion, env.Version)
	}
	body := data[HeaderBytes:]
	switch env.Type {
	case TypeCoded:
		if len(body) < 8 {
			return fmt.Errorf("%w: coded body %d bytes < 8", ErrTruncated, len(body))
		}
		k := binary.LittleEndian.Uint32(body[0:4])
		vecBits := binary.LittleEndian.Uint32(body[4:8])
		if vecBits > MaxVecBits {
			return fmt.Errorf("%w: coded vector %d bits exceeds cap", ErrMalformed, vecBits)
		}
		if k > vecBits {
			return fmt.Errorf("%w: k=%d exceeds vector length %d", ErrMalformed, k, vecBits)
		}
		if err := bitvecFromWire(&p.Coded.Vec, body[8:], int(vecBits)); err != nil {
			return err
		}
		p.Env = env
		p.Coded.K = int(k)
		return nil
	case TypeToken:
		if len(body) < 12 {
			return fmt.Errorf("%w: token body %d bytes < 12", ErrTruncated, len(body))
		}
		uid := binary.LittleEndian.Uint64(body[0:8])
		payloadBits := binary.LittleEndian.Uint32(body[8:12])
		if payloadBits > MaxVecBits {
			return fmt.Errorf("%w: token payload %d bits exceeds cap", ErrMalformed, payloadBits)
		}
		if err := bitvecFromWire(&p.Token.Payload, body[12:], int(payloadBits)); err != nil {
			return err
		}
		p.Env = env
		p.Token.UID = token.UID(uid)
		return nil
	case TypeAck:
		if len(body) < 8 {
			return fmt.Errorf("%w: ack body %d bytes < 8", ErrTruncated, len(body))
		}
		a := &p.Ack
		nRanks := binary.LittleEndian.Uint32(body[4:8])
		if nRanks > MaxAckEntries {
			return fmt.Errorf("%w: ack rank count %d exceeds cap", ErrMalformed, nRanks)
		}
		rest := body[8:]
		if uint64(len(rest)) < 8*uint64(nRanks)+4 {
			return fmt.Errorf("%w: ack body %d bytes for %d rank entries", ErrTruncated, len(body), nRanks)
		}
		a.Watermark = binary.LittleEndian.Uint32(body[0:4])
		a.Ranks = a.Ranks[:0]
		for i := 0; i < int(nRanks); i++ {
			a.Ranks = append(a.Ranks, GenRank{
				Gen:  binary.LittleEndian.Uint32(rest[8*i:]),
				Rank: binary.LittleEndian.Uint32(rest[8*i+4:]),
			})
		}
		rest = rest[8*nRanks:]
		nPeers := binary.LittleEndian.Uint32(rest[0:4])
		if nPeers > MaxAckEntries {
			return fmt.Errorf("%w: ack peer count %d exceeds cap", ErrMalformed, nPeers)
		}
		rest = rest[4:]
		if uint64(len(rest)) != 8*uint64(nPeers) {
			return fmt.Errorf("%w: %d trailing ack bytes for %d peer entries (want %d)", ErrMalformed, len(rest), nPeers, 8*uint64(nPeers))
		}
		a.Peers = a.Peers[:0]
		for i := 0; i < int(nPeers); i++ {
			a.Peers = append(a.Peers, PeerMark{
				Node:      binary.LittleEndian.Uint32(rest[8*i:]),
				Watermark: binary.LittleEndian.Uint32(rest[8*i+4:]),
			})
		}
		p.Env = env
		return nil
	case TypeHello:
		if len(body) < 5 {
			return fmt.Errorf("%w: hello body %d bytes < 5", ErrTruncated, len(body))
		}
		if body[0] > 1 {
			return fmt.Errorf("%w: hello flags %d (only 0/1 defined)", ErrMalformed, body[0])
		}
		nPeers := binary.LittleEndian.Uint32(body[1:5])
		if nPeers > MaxAckEntries {
			return fmt.Errorf("%w: hello peer count %d exceeds cap", ErrMalformed, nPeers)
		}
		rest := body[5:]
		if uint64(len(rest)) != 4*uint64(nPeers) {
			return fmt.Errorf("%w: %d trailing hello bytes for %d peer entries (want %d)", ErrMalformed, len(rest), nPeers, 4*uint64(nPeers))
		}
		h := &p.Hello
		h.Leaving = body[0] == 1
		h.Peers = h.Peers[:0]
		for i := 0; i < int(nPeers); i++ {
			h.Peers = append(h.Peers, binary.LittleEndian.Uint32(rest[4*i:]))
		}
		p.Env = env
		return nil
	case TypeAnnounce:
		if len(body) < 13 {
			return fmt.Errorf("%w: announce body %d bytes < 13", ErrTruncated, len(body))
		}
		if body[0] > byte(AnnounceLookupOK) {
			return fmt.Errorf("%w: announce op %d (only 0-3 defined)", ErrMalformed, body[0])
		}
		nAddrs := binary.LittleEndian.Uint32(body[9:13])
		if nAddrs > MaxAckEntries {
			return fmt.Errorf("%w: announce entry count %d exceeds cap", ErrMalformed, nAddrs)
		}
		a := &p.Announce
		a.Op = AnnounceOp(body[0])
		a.MsgID = binary.LittleEndian.Uint64(body[1:9])
		a.Addrs = a.Addrs[:0]
		rest := body[13:]
		for i := 0; i < int(nAddrs); i++ {
			if len(rest) < 6 {
				return fmt.Errorf("%w: announce entry %d header: %d bytes < 6", ErrTruncated, i, len(rest))
			}
			node := binary.LittleEndian.Uint32(rest[0:4])
			alen := int(binary.LittleEndian.Uint16(rest[4:6]))
			if alen > MaxAddrBytes {
				return fmt.Errorf("%w: announce addr %d bytes exceeds cap %d", ErrMalformed, alen, MaxAddrBytes)
			}
			rest = rest[6:]
			if len(rest) < alen {
				return fmt.Errorf("%w: announce entry %d addr: %d bytes < %d", ErrTruncated, i, len(rest), alen)
			}
			a.Addrs = append(a.Addrs, AddrEntry{Node: node, Addr: string(rest[:alen])})
			rest = rest[alen:]
		}
		if len(rest) != 0 {
			return fmt.Errorf("%w: %d trailing announce bytes", ErrMalformed, len(rest))
		}
		p.Env = env
		return nil
	default:
		return fmt.Errorf("%w: %d", ErrType, env.Type)
	}
}

// bitvecFromWire decodes an n-bit LSB-first vector that must occupy
// exactly the remaining bytes, with all spare bits of the last byte
// zero (the canonical encoding Marshal produces), into the caller's
// reusable vector.
func bitvecFromWire(v *gf.BitVec, b []byte, n int) error {
	need := (n + 7) / 8
	if len(b) != need {
		return fmt.Errorf("%w: %d payload bytes for %d bits (want %d)", ErrMalformed, len(b), n, need)
	}
	if n%8 != 0 && b[need-1]>>(uint(n)%8) != 0 {
		return fmt.Errorf("%w: nonzero spare bits in final byte", ErrMalformed)
	}
	v.SetFromBytes(b, n)
	return nil
}

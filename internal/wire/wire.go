// Package wire is the compact binary codec for the cluster runtime's
// protocol messages: network-coded packets (rlnc.Coded), raw tokens
// (token.Token, for the store-and-forward baseline), and a small
// envelope header carrying version, message type, sender and epoch.
//
// The codec is the serialization boundary between the synchronous
// simulator world (in-memory Message values whose cost is their Bits()
// accounting) and the asynchronous cluster world (byte slices on a
// Transport). Two invariants tie the worlds together:
//
//   - Marshal and Unmarshal round-trip exactly: Unmarshal(Marshal(p))
//     reproduces p, and Marshal(Unmarshal(b)) reproduces b for every b
//     the decoder accepts (enforced by FuzzWireRoundTrip). The decoder
//     rejects trailing bytes and nonzero spare bits so every accepted
//     byte string has exactly one packet value.
//
//   - Packet implements the simulator's Bits() accounting by delegating
//     to the wrapped message, so wire costs and simulator costs are
//     directly comparable. The fixed framing overhead (header plus
//     length fields) is reported separately by WireBytes; tests pin the
//     exact relation between the two.
//
// Wire layout (all integers little-endian):
//
//	offset  size  field
//	0       1     version (currently 1)
//	1       1     type (1 = coded, 2 = token)
//	2       4     sender (uint32 node id)
//	6       4     epoch (uint32 sender-local sequence/round)
//
// followed by a type-specific body:
//
//	coded:  uint32 k, uint32 vecBits, ceil(vecBits/8) bytes (LSB-first)
//	token:  uint64 uid, uint32 payloadBits, ceil(payloadBits/8) bytes
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/gf"
	"repro/internal/rlnc"
	"repro/internal/token"
)

// Version is the codec version byte emitted by Marshal and required by
// Unmarshal.
const Version = 1

// HeaderBytes is the size of the envelope header on the wire.
const HeaderBytes = 10

// HeaderBits is the envelope overhead in bits, for cost accounting that
// wants to charge framing on top of Packet.Bits().
const HeaderBits = HeaderBytes * 8

// MaxVecBits caps the bit length the decoder accepts for a coded vector
// or token payload. It is far above anything the experiments use and
// exists only to bound decoder work on adversarial input.
const MaxVecBits = 1 << 24

// Type discriminates the message kinds the codec carries.
type Type uint8

const (
	// TypeCoded is a network-coded packet: k, coefficient vector and
	// coded payload in one bit vector.
	TypeCoded Type = 1
	// TypeToken is a raw token: UID plus payload, the store-and-forward
	// baseline's unit of exchange.
	TypeToken Type = 2
)

var (
	// ErrTruncated is wrapped by errors for packets shorter than their
	// declared layout.
	ErrTruncated = errors.New("wire: truncated packet")
	// ErrVersion is wrapped by errors for unsupported version bytes.
	ErrVersion = errors.New("wire: unsupported version")
	// ErrType is wrapped by errors for unknown message types.
	ErrType = errors.New("wire: unknown message type")
	// ErrMalformed is wrapped by errors for packets that parse but
	// violate a structural invariant (length mismatch, trailing bytes,
	// nonzero spare bits, k exceeding the vector length).
	ErrMalformed = errors.New("wire: malformed packet")
)

// Envelope is the fixed packet header.
type Envelope struct {
	Version uint8
	Type    Type
	// Sender is the originating node id.
	Sender uint32
	// Epoch is a sender-local sequence or round number; the codec does
	// not interpret it.
	Epoch uint32
}

// Packet is one decoded protocol message: the envelope plus exactly one
// of the type-specific bodies (selected by Env.Type).
type Packet struct {
	Env Envelope
	// Coded is valid iff Env.Type == TypeCoded.
	Coded rlnc.Coded
	// Token is valid iff Env.Type == TypeToken.
	Token token.Token
}

// NewCoded wraps a coded message in a versioned envelope.
func NewCoded(sender, epoch int, c rlnc.Coded) Packet {
	return Packet{
		Env:   Envelope{Version: Version, Type: TypeCoded, Sender: uint32(sender), Epoch: uint32(epoch)},
		Coded: c,
	}
}

// NewToken wraps a raw token in a versioned envelope.
func NewToken(sender, epoch int, t token.Token) Packet {
	return Packet{
		Env:   Envelope{Version: Version, Type: TypeToken, Sender: uint32(sender), Epoch: uint32(epoch)},
		Token: t,
	}
}

// Bits returns the wrapped message's size under the simulator's
// accounting (rlnc.Coded.Bits or token.Token.Bits), which is what makes
// wire costs comparable with dynnet.Metrics. Framing overhead is
// excluded; see HeaderBits and WireBytes.
func (p Packet) Bits() int {
	switch p.Env.Type {
	case TypeCoded:
		return p.Coded.Bits()
	case TypeToken:
		return p.Token.Bits()
	}
	return 0
}

// WireBytes returns the exact marshaled size in bytes.
func (p Packet) WireBytes() int {
	switch p.Env.Type {
	case TypeCoded:
		return HeaderBytes + 8 + (p.Coded.Vec.Len()+7)/8
	case TypeToken:
		return HeaderBytes + 12 + (p.Token.Payload.Len()+7)/8
	}
	return HeaderBytes
}

// Marshal serializes the packet. It panics on an envelope type the
// codec does not know (a programming error, not a wire condition).
func (p Packet) Marshal() []byte {
	out := make([]byte, 0, p.WireBytes())
	out = append(out, p.Env.Version, byte(p.Env.Type))
	out = binary.LittleEndian.AppendUint32(out, p.Env.Sender)
	out = binary.LittleEndian.AppendUint32(out, p.Env.Epoch)
	switch p.Env.Type {
	case TypeCoded:
		out = binary.LittleEndian.AppendUint32(out, uint32(p.Coded.K))
		out = binary.LittleEndian.AppendUint32(out, uint32(p.Coded.Vec.Len()))
		out = append(out, p.Coded.Vec.Bytes()...)
	case TypeToken:
		out = binary.LittleEndian.AppendUint64(out, uint64(p.Token.UID))
		out = binary.LittleEndian.AppendUint32(out, uint32(p.Token.Payload.Len()))
		out = append(out, p.Token.Payload.Bytes()...)
	default:
		panic(fmt.Sprintf("wire: marshal of unknown type %d", p.Env.Type))
	}
	return out
}

// Unmarshal parses one packet, validating the version, type, declared
// lengths, spare bits and the absence of trailing bytes, so that
// Marshal(Unmarshal(b)) == b for every accepted b.
func Unmarshal(data []byte) (Packet, error) {
	if len(data) < HeaderBytes {
		return Packet{}, fmt.Errorf("%w: %d bytes < %d-byte header", ErrTruncated, len(data), HeaderBytes)
	}
	env := Envelope{
		Version: data[0],
		Type:    Type(data[1]),
		Sender:  binary.LittleEndian.Uint32(data[2:6]),
		Epoch:   binary.LittleEndian.Uint32(data[6:10]),
	}
	if env.Version != Version {
		return Packet{}, fmt.Errorf("%w: %d", ErrVersion, env.Version)
	}
	body := data[HeaderBytes:]
	switch env.Type {
	case TypeCoded:
		if len(body) < 8 {
			return Packet{}, fmt.Errorf("%w: coded body %d bytes < 8", ErrTruncated, len(body))
		}
		k := binary.LittleEndian.Uint32(body[0:4])
		vecBits := binary.LittleEndian.Uint32(body[4:8])
		if vecBits > MaxVecBits {
			return Packet{}, fmt.Errorf("%w: coded vector %d bits exceeds cap", ErrMalformed, vecBits)
		}
		if k > vecBits {
			return Packet{}, fmt.Errorf("%w: k=%d exceeds vector length %d", ErrMalformed, k, vecBits)
		}
		vec, err := bitvecFromWire(body[8:], int(vecBits))
		if err != nil {
			return Packet{}, err
		}
		return Packet{Env: env, Coded: rlnc.Coded{K: int(k), Vec: vec}}, nil
	case TypeToken:
		if len(body) < 12 {
			return Packet{}, fmt.Errorf("%w: token body %d bytes < 12", ErrTruncated, len(body))
		}
		uid := binary.LittleEndian.Uint64(body[0:8])
		payloadBits := binary.LittleEndian.Uint32(body[8:12])
		if payloadBits > MaxVecBits {
			return Packet{}, fmt.Errorf("%w: token payload %d bits exceeds cap", ErrMalformed, payloadBits)
		}
		payload, err := bitvecFromWire(body[12:], int(payloadBits))
		if err != nil {
			return Packet{}, err
		}
		return Packet{Env: env, Token: token.Token{UID: token.UID(uid), Payload: payload}}, nil
	default:
		return Packet{}, fmt.Errorf("%w: %d", ErrType, env.Type)
	}
}

// bitvecFromWire decodes an n-bit LSB-first vector that must occupy
// exactly the remaining bytes, with all spare bits of the last byte
// zero (the canonical encoding Marshal produces).
func bitvecFromWire(b []byte, n int) (gf.BitVec, error) {
	need := (n + 7) / 8
	if len(b) != need {
		return gf.BitVec{}, fmt.Errorf("%w: %d payload bytes for %d bits (want %d)", ErrMalformed, len(b), n, need)
	}
	if n%8 != 0 && b[need-1]>>(uint(n)%8) != 0 {
		return gf.BitVec{}, fmt.Errorf("%w: nonzero spare bits in final byte", ErrMalformed)
	}
	return gf.BitVecFromBytes(b, n), nil
}

package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math/rand"
	"reflect"
	"strconv"
	"testing"

	"repro/internal/dynnet"
	"repro/internal/gf"
	"repro/internal/rlnc"
	"repro/internal/token"
)

// Packet must satisfy the simulator's message interface so wire and
// simulator costs share one accounting.
var _ dynnet.Message = Packet{}

func TestCodedRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, dims := range []struct{ k, d int }{{1, 0}, {1, 1}, {8, 8}, {32, 128}, {64, 7}, {13, 100}} {
		c := rlnc.Encode(dims.k/2, dims.k, gf.RandomBitVec(dims.d, rng.Uint64))
		p := NewCoded(3, 42, c)
		got, err := Unmarshal(p.Marshal())
		if err != nil {
			t.Fatalf("k=%d d=%d: %v", dims.k, dims.d, err)
		}
		if got.Env != p.Env {
			t.Errorf("k=%d d=%d: envelope %+v != %+v", dims.k, dims.d, got.Env, p.Env)
		}
		if got.Coded.K != c.K || !got.Coded.Vec.Equal(c.Vec) {
			t.Errorf("k=%d d=%d: coded body does not round-trip", dims.k, dims.d)
		}
	}
}

func TestTokenRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, d := range []int{0, 1, 8, 63, 64, 65, 500} {
		tok := token.Random(token.NewUID(7, 9), d, rng)
		p := NewToken(1, 5, tok)
		got, err := Unmarshal(p.Marshal())
		if err != nil {
			t.Fatalf("d=%d: %v", d, err)
		}
		if got.Env != p.Env {
			t.Errorf("d=%d: envelope mismatch", d)
		}
		if !got.Token.Equal(tok) {
			t.Errorf("d=%d: token does not round-trip", d)
		}
	}
}

func TestAckRoundTrip(t *testing.T) {
	acks := []Ack{
		{},
		{Watermark: 3},
		{Watermark: 2, Ranks: []GenRank{{Gen: 2, Rank: 5}, {Gen: 3, Rank: 0}}},
		{Watermark: 1, Peers: []PeerMark{{Node: 0, Watermark: 1}, {Node: 9, Watermark: 4}}},
		{Watermark: 7, Ranks: []GenRank{{Gen: 7, Rank: 8}}, Peers: []PeerMark{{Node: 3, Watermark: 7}}},
	}
	for i, a := range acks {
		p := NewAck(i, i*2, a)
		got, err := Unmarshal(p.Marshal())
		if err != nil {
			t.Fatalf("ack %d: %v", i, err)
		}
		if got.Env != p.Env {
			t.Errorf("ack %d: envelope mismatch", i)
		}
		if !reflect.DeepEqual(got.Ack, a) {
			t.Errorf("ack %d: body %+v does not round-trip to %+v", i, a, got.Ack)
		}
		if want := 32 + 64*(len(a.Ranks)+len(a.Peers)); p.Bits() != want {
			t.Errorf("ack %d: Bits %d, want %d", i, p.Bits(), want)
		}
		if want := HeaderBytes + 12 + 8*(len(a.Ranks)+len(a.Peers)); len(p.Marshal()) != want || p.WireBytes() != want {
			t.Errorf("ack %d: wire size %d (WireBytes %d), want %d", i, len(p.Marshal()), p.WireBytes(), want)
		}
	}
}

func TestAckUnmarshalRejects(t *testing.T) {
	good := NewAck(1, 2, Ack{Watermark: 1, Ranks: []GenRank{{Gen: 1, Rank: 2}}, Peers: []PeerMark{{Node: 0, Watermark: 1}}}).Marshal()
	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"short body", good[:HeaderBytes+4], ErrTruncated},
		{"rank list truncated", good[:HeaderBytes+12], ErrTruncated},
		{"peer list truncated", good[:len(good)-1], ErrMalformed},
		{"trailing byte", append(append([]byte(nil), good...), 0), ErrMalformed},
	}
	for _, tc := range cases {
		if _, err := Unmarshal(tc.data); !errors.Is(err, tc.want) {
			t.Errorf("%s: err %v, want %v", tc.name, err, tc.want)
		}
	}
	for _, off := range []int{HeaderBytes + 4, HeaderBytes + 4 + 4 + 8} {
		huge := append([]byte(nil), good...)
		binary.LittleEndian.PutUint32(huge[off:], MaxAckEntries+1)
		if _, err := Unmarshal(huge); !errors.Is(err, ErrMalformed) {
			t.Errorf("oversized count at offset %d accepted: %v", off, err)
		}
	}
}

func TestHelloRoundTrip(t *testing.T) {
	hellos := []Hello{
		{},
		{Leaving: true},
		{Peers: []uint32{0, 3, 9}},
		{Leaving: true, Peers: []uint32{7}},
	}
	for i, h := range hellos {
		p := NewHello(i, i*3, h)
		got, err := Unmarshal(p.Marshal())
		if err != nil {
			t.Fatalf("hello %d: %v", i, err)
		}
		if got.Env != p.Env {
			t.Errorf("hello %d: envelope mismatch", i)
		}
		if !reflect.DeepEqual(got.Hello, h) {
			t.Errorf("hello %d: body %+v does not round-trip to %+v", i, h, got.Hello)
		}
		if want := 8 + 32*len(h.Peers); p.Bits() != want {
			t.Errorf("hello %d: Bits %d, want %d", i, p.Bits(), want)
		}
		if want := HeaderBytes + 5 + 4*len(h.Peers); len(p.Marshal()) != want || p.WireBytes() != want {
			t.Errorf("hello %d: wire size %d (WireBytes %d), want %d", i, len(p.Marshal()), p.WireBytes(), want)
		}
	}
}

func TestHelloUnmarshalRejects(t *testing.T) {
	good := NewHello(1, 2, Hello{Peers: []uint32{4, 5}}).Marshal()
	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"short body", good[:HeaderBytes+3], ErrTruncated},
		{"peer list truncated", good[:len(good)-1], ErrMalformed},
		{"trailing byte", append(append([]byte(nil), good...), 0), ErrMalformed},
	}
	for _, tc := range cases {
		if _, err := Unmarshal(tc.data); !errors.Is(err, tc.want) {
			t.Errorf("%s: err %v, want %v", tc.name, err, tc.want)
		}
	}
	// Undefined flag bits are rejected: the canonical encoding uses only
	// 0 (announce) and 1 (leave).
	for _, flags := range []byte{2, 3, 0x80, 0xff} {
		bad := append([]byte(nil), good...)
		bad[HeaderBytes] = flags
		if _, err := Unmarshal(bad); !errors.Is(err, ErrMalformed) {
			t.Errorf("flags %#x accepted: %v", flags, err)
		}
	}
	huge := append([]byte(nil), good...)
	binary.LittleEndian.PutUint32(huge[HeaderBytes+1:], MaxAckEntries+1)
	if _, err := Unmarshal(huge); !errors.Is(err, ErrMalformed) {
		t.Errorf("oversized peer count accepted: %v", err)
	}
}

func TestAnnounceRoundTrip(t *testing.T) {
	anns := []Announce{
		{},
		{Op: AnnouncePing, MsgID: 1, Addrs: []AddrEntry{{Node: 0, Addr: "127.0.0.1:9000"}}},
		{Op: AnnouncePong, MsgID: 7, Addrs: []AddrEntry{
			{Node: 0, Addr: "127.0.0.1:9000"},
			{Node: 3, Addr: "[::1]:9003"},
		}},
		{Op: AnnounceLookup, MsgID: 1 << 60, Addrs: []AddrEntry{{Node: 9}}},
		{Op: AnnounceLookupOK, MsgID: 42, Addrs: []AddrEntry{{Node: 9, Addr: "10.0.0.9:12345"}}},
	}
	for i, a := range anns {
		p := NewAnnounce(i, i*2, a)
		got, err := Unmarshal(p.Marshal())
		if err != nil {
			t.Fatalf("announce %d: %v", i, err)
		}
		if got.Env != p.Env {
			t.Errorf("announce %d: envelope mismatch", i)
		}
		if got.Announce.Op != a.Op || got.Announce.MsgID != a.MsgID ||
			len(got.Announce.Addrs) != len(a.Addrs) {
			t.Errorf("announce %d: body %+v does not round-trip to %+v", i, a, got.Announce)
		}
		for j := range a.Addrs {
			if got.Announce.Addrs[j] != a.Addrs[j] {
				t.Errorf("announce %d entry %d: %+v != %+v", i, j, got.Announce.Addrs[j], a.Addrs[j])
			}
		}
		wantBits := 8 + 64
		wantWire := HeaderBytes + 13
		for _, e := range a.Addrs {
			wantBits += 48 + 8*len(e.Addr)
			wantWire += 6 + len(e.Addr)
		}
		if p.Bits() != wantBits {
			t.Errorf("announce %d: Bits %d, want %d", i, p.Bits(), wantBits)
		}
		if len(p.Marshal()) != wantWire || p.WireBytes() != wantWire {
			t.Errorf("announce %d: wire size %d (WireBytes %d), want %d", i, len(p.Marshal()), p.WireBytes(), wantWire)
		}
	}
}

func TestAnnounceUnmarshalRejects(t *testing.T) {
	good := NewAnnounce(1, 2, Announce{Op: AnnouncePong, MsgID: 5, Addrs: []AddrEntry{
		{Node: 4, Addr: "127.0.0.1:9004"},
		{Node: 5, Addr: "127.0.0.1:9005"},
	}}).Marshal()
	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"short body", good[:HeaderBytes+12], ErrTruncated},
		{"entry header truncated", good[:HeaderBytes+13+3], ErrTruncated},
		{"addr bytes truncated", good[:len(good)-1], ErrTruncated},
		{"trailing byte", append(append([]byte(nil), good...), 0), ErrMalformed},
	}
	for _, tc := range cases {
		if _, err := Unmarshal(tc.data); !errors.Is(err, tc.want) {
			t.Errorf("%s: err %v, want %v", tc.name, err, tc.want)
		}
	}
	// Undefined op values are rejected: canonical encodings use only
	// ping/pong/lookup/lookup-ok.
	for _, op := range []byte{4, 9, 0xff} {
		bad := append([]byte(nil), good...)
		bad[HeaderBytes] = op
		if _, err := Unmarshal(bad); !errors.Is(err, ErrMalformed) {
			t.Errorf("op %#x accepted: %v", op, err)
		}
	}
	// Oversized entry count must be rejected before any allocation.
	huge := append([]byte(nil), good...)
	binary.LittleEndian.PutUint32(huge[HeaderBytes+9:], MaxAckEntries+1)
	if _, err := Unmarshal(huge); !errors.Is(err, ErrMalformed) {
		t.Errorf("oversized entry count accepted: %v", err)
	}
	// An address length beyond MaxAddrBytes is malformed even when the
	// remaining body could satisfy it.
	long := append([]byte(nil), good...)
	binary.LittleEndian.PutUint16(long[HeaderBytes+13+4:], MaxAddrBytes+1)
	if _, err := Unmarshal(long); !errors.Is(err, ErrMalformed) {
		t.Errorf("oversized addr length accepted: %v", err)
	}
}

// TestAnnounceMarshalPanics pins the encoder-side contract: building
// wire bytes for an undefined op or an address the uint16 length field
// cannot carry is a programming error, not a silent truncation.
func TestAnnounceMarshalPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		f()
	}
	mustPanic("bad op", func() {
		NewAnnounce(0, 0, Announce{Op: 4}).Marshal()
	})
	mustPanic("oversized addr", func() {
		NewAnnounce(0, 0, Announce{Addrs: []AddrEntry{{Node: 0, Addr: string(make([]byte, MaxAddrBytes+1))}}}).Marshal()
	})
}

// TestEnvelopeRangePanics pins the no-wrap policy: a sender or epoch
// the 32-bit wire fields cannot carry must panic in the constructor
// instead of silently truncating, so generation g and g+2^32 can never
// alias in ack/rank bookkeeping (the long-stream corruption this
// regression test exists for).
func TestEnvelopeRangePanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic for out-of-range envelope value", name)
			}
		}()
		f()
	}
	tok := token.Token{Payload: gf.NewBitVec(0)}
	mustPanic("epoch negative", func() { NewAck(0, -1, Ack{}) })
	mustPanic("sender negative", func() { NewCoded(-1, 0, rlnc.Coded{K: 0, Vec: gf.NewBitVec(0)}) })
	if strconv.IntSize < 64 {
		t.Skip("values beyond the 32-bit wire range are unrepresentable in int on this platform")
	}
	// Computed at runtime so the test still compiles where int is 32
	// bits (the constant 2^32 would overflow at compile time).
	var over64 int64 = 1 << 32
	over := int(over64)
	mustPanic("epoch 2^32", func() { NewToken(0, over, tok) })
	mustPanic("sender 2^32", func() { NewHello(over, 0, Hello{}) })

	// The extremes of the representable range still alias-proof: they
	// marshal and round-trip unchanged.
	p := NewToken(over-1, over-1, tok)
	got, err := Unmarshal(p.Marshal())
	if err != nil || got.Env.Sender != MaxSender || got.Env.Epoch != MaxEpoch {
		t.Errorf("max envelope values did not round-trip: %+v, %v", got.Env, err)
	}
}

// TestGoldenWireBytes pins the exact byte layout of every packet type —
// version/type/sender/epoch envelope offsets and each body — so a codec
// change that would break cross-version compatibility fails this test
// loudly instead of silently re-defining the wire format.
func TestGoldenWireBytes(t *testing.T) {
	codedVec := gf.NewBitVec(12)
	codedVec.Set(0, true)
	codedVec.Set(5, true)
	codedVec.Set(11, true)
	tokenPayload := gf.NewBitVec(9)
	tokenPayload.Set(0, true)
	tokenPayload.Set(8, true)

	cases := []struct {
		name string
		pkt  Packet
		want []byte
	}{
		{
			"coded",
			NewCoded(0x04030201, 0x44332211, rlnc.Coded{K: 3, Vec: codedVec}),
			[]byte{
				0x01,                   // version
				0x01,                   // type = coded
				0x01, 0x02, 0x03, 0x04, // sender, little-endian
				0x11, 0x22, 0x33, 0x44, // epoch, little-endian
				0x03, 0x00, 0x00, 0x00, // k = 3
				0x0c, 0x00, 0x00, 0x00, // vecBits = 12
				0x21, 0x08, // bits 0, 5, 11 (LSB-first)
			},
		},
		{
			"token",
			NewToken(5, 6, token.Token{UID: token.NewUID(2, 3), Payload: tokenPayload}),
			[]byte{
				0x01,                   // version
				0x02,                   // type = token
				0x05, 0x00, 0x00, 0x00, // sender
				0x06, 0x00, 0x00, 0x00, // epoch
				0x03, 0x00, 0x00, 0x00, 0x02, 0x00, 0x00, 0x00, // uid = owner 2 << 32 | seq 3
				0x09, 0x00, 0x00, 0x00, // payloadBits = 9
				0x01, 0x01, // bits 0 and 8
			},
		},
		{
			"hello",
			NewHello(9, 10, Hello{Leaving: true, Peers: []uint32{2, 0x01020304}}),
			[]byte{
				0x01,                   // version
				0x04,                   // type = hello
				0x09, 0x00, 0x00, 0x00, // sender
				0x0a, 0x00, 0x00, 0x00, // epoch
				0x01,                   // flags: leaving
				0x02, 0x00, 0x00, 0x00, // 2 peer entries
				0x02, 0x00, 0x00, 0x00, // peer 2
				0x04, 0x03, 0x02, 0x01, // peer 0x01020304, little-endian
			},
		},
		{
			"announce",
			NewAnnounce(11, 12, Announce{
				Op:    AnnouncePong,
				MsgID: 0x0102030405060708,
				Addrs: []AddrEntry{{Node: 2, Addr: "a:1"}},
			}),
			[]byte{
				0x01,                   // version
				0x05,                   // type = announce
				0x0b, 0x00, 0x00, 0x00, // sender
				0x0c, 0x00, 0x00, 0x00, // epoch
				0x01,                                           // op = pong
				0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01, // msgID, little-endian
				0x01, 0x00, 0x00, 0x00, // 1 address entry
				0x02, 0x00, 0x00, 0x00, // node 2
				0x03, 0x00, // addr length 3
				0x61, 0x3a, 0x31, // "a:1"
			},
		},
		{
			"ack",
			NewAck(7, 8, Ack{
				Watermark: 2,
				Ranks:     []GenRank{{Gen: 2, Rank: 1}},
				Peers:     []PeerMark{{Node: 0, Watermark: 2}, {Node: 1, Watermark: 3}},
			}),
			[]byte{
				0x01,                   // version
				0x03,                   // type = ack
				0x07, 0x00, 0x00, 0x00, // sender
				0x08, 0x00, 0x00, 0x00, // epoch
				0x02, 0x00, 0x00, 0x00, // watermark = 2
				0x01, 0x00, 0x00, 0x00, // 1 rank entry
				0x02, 0x00, 0x00, 0x00, 0x01, 0x00, 0x00, 0x00, // gen 2 rank 1
				0x02, 0x00, 0x00, 0x00, // 2 peer entries
				0x00, 0x00, 0x00, 0x00, 0x02, 0x00, 0x00, 0x00, // node 0 watermark 2
				0x01, 0x00, 0x00, 0x00, 0x03, 0x00, 0x00, 0x00, // node 1 watermark 3
			},
		},
	}
	for _, tc := range cases {
		got := tc.pkt.Marshal()
		if !bytes.Equal(got, tc.want) {
			t.Errorf("%s: marshal\n got %x\nwant %x", tc.name, got, tc.want)
		}
		// The envelope offsets are shared by every type: version byte,
		// type byte, then the two little-endian uint32s.
		if got[0] != Version || Type(got[1]) != tc.pkt.Env.Type {
			t.Errorf("%s: envelope version/type bytes %x %x", tc.name, got[0], got[1])
		}
		if s := binary.LittleEndian.Uint32(got[2:6]); s != tc.pkt.Env.Sender {
			t.Errorf("%s: sender at offset 2 = %d, want %d", tc.name, s, tc.pkt.Env.Sender)
		}
		if e := binary.LittleEndian.Uint32(got[6:10]); e != tc.pkt.Env.Epoch {
			t.Errorf("%s: epoch at offset 6 = %d, want %d", tc.name, e, tc.pkt.Env.Epoch)
		}
		back, err := Unmarshal(tc.want)
		if err != nil {
			t.Errorf("%s: golden bytes rejected: %v", tc.name, err)
		} else if !bytes.Equal(back.Marshal(), tc.want) {
			t.Errorf("%s: golden bytes not canonical", tc.name)
		}
	}
}

// TestBitsAgreesWithSimAccounting pins the comparability contract: a
// decoded wire packet reports exactly the Bits() the in-memory message
// would be charged by the dynnet engine, and the physical size is that
// payload plus the documented framing.
func TestBitsAgreesWithSimAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := rlnc.Encode(2, 16, gf.RandomBitVec(100, rng.Uint64))
	pc := NewCoded(0, 0, c)
	if pc.Bits() != c.Bits() {
		t.Errorf("coded Bits %d != rlnc accounting %d", pc.Bits(), c.Bits())
	}
	if want := 16 + 100; pc.Bits() != want {
		t.Errorf("coded Bits %d, want k+payload = %d", pc.Bits(), want)
	}
	if got, want := len(pc.Marshal()), HeaderBytes+8+(c.Bits()+7)/8; got != want || pc.WireBytes() != want {
		t.Errorf("coded wire size %d (WireBytes %d), want %d", got, pc.WireBytes(), want)
	}

	tok := token.Random(token.NewUID(1, 2), 100, rng)
	pt := NewToken(0, 0, tok)
	if pt.Bits() != tok.Bits() {
		t.Errorf("token Bits %d != token accounting %d", pt.Bits(), tok.Bits())
	}
	if want := token.UIDBits + 100; pt.Bits() != want {
		t.Errorf("token Bits %d, want UID+payload = %d", pt.Bits(), want)
	}
	if got, want := len(pt.Marshal()), HeaderBytes+12+(100+7)/8; got != want || pt.WireBytes() != want {
		t.Errorf("token wire size %d (WireBytes %d), want %d", got, pt.WireBytes(), want)
	}
}

func TestUnmarshalRejects(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	good := NewCoded(1, 1, rlnc.Encode(0, 4, gf.RandomBitVec(5, rng.Uint64))).Marshal()

	mutate := func(f func(b []byte) []byte) []byte {
		b := append([]byte(nil), good...)
		return f(b)
	}
	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, ErrTruncated},
		{"short header", good[:5], ErrTruncated},
		{"bad version", mutate(func(b []byte) []byte { b[0] = 9; return b }), ErrVersion},
		{"bad type", mutate(func(b []byte) []byte { b[1] = 77; return b }), ErrType},
		{"short coded body", good[:HeaderBytes+3], ErrTruncated},
		{"trailing byte", append(append([]byte(nil), good...), 0), ErrMalformed},
		{"truncated vector", good[:len(good)-1], ErrMalformed},
		{"spare bits set", mutate(func(b []byte) []byte { b[len(b)-1] |= 0x80; return b }), ErrMalformed},
		{"k over veclen", mutate(func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[HeaderBytes:], 100)
			return b
		}), ErrMalformed},
	}
	for _, tc := range cases {
		if _, err := Unmarshal(tc.data); !errors.Is(err, tc.want) {
			t.Errorf("%s: err %v, want %v", tc.name, err, tc.want)
		}
	}

	// Oversized declared length must be rejected before allocation.
	huge := mutate(func(b []byte) []byte {
		binary.LittleEndian.PutUint32(b[HeaderBytes+4:], MaxVecBits+1)
		return b
	})
	if _, err := Unmarshal(huge); !errors.Is(err, ErrMalformed) {
		t.Errorf("oversized vector accepted: %v", err)
	}

	// Short token body.
	tokHdr := NewToken(0, 0, token.Token{Payload: gf.NewBitVec(0)}).Marshal()[:HeaderBytes+4]
	if _, err := Unmarshal(tokHdr); !errors.Is(err, ErrTruncated) {
		t.Errorf("short token body: %v", err)
	}
}

// TestAcceptedBytesAreCanonical asserts the byte-level half of the
// round-trip contract on hand-built inputs.
func TestAcceptedBytesAreCanonical(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 50; i++ {
		var p Packet
		if i%2 == 0 {
			p = NewCoded(i, i*3, rlnc.Coded{K: i % 9, Vec: gf.RandomBitVec(i%9+i%31, rng.Uint64)})
		} else {
			p = NewToken(i, i*3, token.Random(token.NewUID(i, 0), i%67, rng))
		}
		b := p.Marshal()
		q, err := Unmarshal(b)
		if err != nil {
			t.Fatalf("packet %d: %v", i, err)
		}
		if !bytes.Equal(q.Marshal(), b) {
			t.Fatalf("packet %d: re-marshal differs", i)
		}
	}
}

func TestMarshalUnknownTypePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for unknown envelope type")
		}
	}()
	Packet{Env: Envelope{Version: Version, Type: 9}}.Marshal()
}

// samplePackets returns one packet of each wire type with non-trivial
// bodies, for exercising the append/into codec paths.
func samplePackets(t *testing.T) []Packet {
	t.Helper()
	rng := rand.New(rand.NewSource(41))
	return []Packet{
		NewCoded(3, 9, rlnc.Encode(5, 32, gf.RandomBitVec(161, rng.Uint64))),
		NewToken(7, 1, token.Token{UID: token.NewUID(2, 11), Payload: gf.RandomBitVec(77, rng.Uint64)}),
		NewAck(2, 4, Ack{
			Watermark: 6,
			Ranks:     []GenRank{{Gen: 6, Rank: 12}, {Gen: 7, Rank: 3}},
			Peers:     []PeerMark{{Node: 0, Watermark: 6}, {Node: 3, Watermark: 5}},
		}),
		NewHello(5, 0, Hello{Leaving: true, Peers: []uint32{1, 4, 6}}),
		NewAnnounce(6, 2, Announce{Op: AnnounceLookupOK, MsgID: 99, Addrs: []AddrEntry{
			{Node: 1, Addr: "127.0.0.1:9001"},
			{Node: 4, Addr: "[::1]:9004"},
		}}),
	}
}

// TestAppendToMatchesMarshal pins AppendTo as a byte-exact drop-in for
// Marshal, including appending after existing content.
func TestAppendToMatchesMarshal(t *testing.T) {
	for _, p := range samplePackets(t) {
		want := p.Marshal()
		if got := p.AppendTo(nil); !bytes.Equal(got, want) {
			t.Errorf("type %d: AppendTo(nil) != Marshal", p.Env.Type)
		}
		prefix := []byte{0xde, 0xad}
		got := p.AppendTo(prefix)
		if !bytes.Equal(got[:2], prefix) || !bytes.Equal(got[2:], want) {
			t.Errorf("type %d: AppendTo with prefix corrupted output", p.Env.Type)
		}
		if len(want) != p.WireBytes() {
			t.Errorf("type %d: WireBytes %d != marshaled length %d", p.Env.Type, p.WireBytes(), len(want))
		}
	}
}

// TestUnmarshalIntoReuse decodes alternating packet types into one
// scratch Packet and requires every decode to match the allocating
// Unmarshal exactly, proving stale cross-type storage never leaks.
func TestUnmarshalIntoReuse(t *testing.T) {
	pkts := samplePackets(t)
	var scratch Packet
	for round := 0; round < 3; round++ {
		for _, p := range pkts {
			raw := p.Marshal()
			if err := UnmarshalInto(&scratch, raw); err != nil {
				t.Fatalf("type %d: UnmarshalInto: %v", p.Env.Type, err)
			}
			want, err := Unmarshal(raw)
			if err != nil {
				t.Fatalf("type %d: Unmarshal: %v", p.Env.Type, err)
			}
			if scratch.Env != want.Env {
				t.Fatalf("type %d: envelope diverged", p.Env.Type)
			}
			if !bytes.Equal(scratch.Marshal(), raw) {
				t.Fatalf("type %d: scratch re-marshal diverged after reuse", p.Env.Type)
			}
		}
	}
}

// TestWireRoundTripSteadyStateZeroAlloc pins the tentpole claim for the
// codec layer: a marshal→unmarshal round trip through one reused buffer
// and one reused scratch Packet allocates nothing.
func TestWireRoundTripSteadyStateZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	p := NewCoded(3, 9, rlnc.Encode(5, 32, gf.RandomBitVec(160, rng.Uint64)))
	var scratch Packet
	buf := p.AppendTo(nil)
	if err := UnmarshalInto(&scratch, buf); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		buf = p.AppendTo(buf[:0])
		if err := UnmarshalInto(&scratch, buf); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state wire round trip allocated %.1f times per op, want 0", allocs)
	}
}

//go:build !race

package repro_test

import (
	"context"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/token"
)

// TestLargeClusterShardedSmoke is the scale gate of the sharded
// lockstep engine: one n=100k, k=32 coded-gossip run on every core
// (shards = GOMAXPROCS), completing within a CI-class memory budget.
// The compact dense membership views and the capped
// DefaultInboxBuffer are what make the footprint linear in n rather
// than quadratic; the HeapHighWater pin below is the regression fence
// for both. Excluded under the race detector (instrumentation
// multiplies both memory and runtime) and skipped in -short runs.
func TestLargeClusterShardedSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("100k-node smoke skipped in -short mode")
	}
	const n, k, payload = 100_000, 32, 32
	toks := token.RandomSet(k, payload, rand.New(rand.NewSource(1)))
	var res *cluster.Result
	m, err := sim.Measure(func() error {
		var runErr error
		res, runErr = cluster.Run(context.Background(), cluster.Config{
			N: n, Fanout: 2, Mode: cluster.Coded, Seed: 1,
			Lockstep: true, Shards: runtime.GOMAXPROCS(0), MaxTicks: 2000,
		}, toks)
		return runErr
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("100k-node run incomplete after %d ticks", res.Ticks)
	}
	t.Logf("n=%d k=%d shards=%d: %d ticks in %v, heap high-water %d MiB",
		n, k, runtime.GOMAXPROCS(0), res.Ticks, m.Runtime, m.HeapHighWater>>20)
	// Peak-memory pin: the run's live heap plus uncollected garbage must
	// stay under 2 GiB. The dominant terms are the capped inboxes
	// (n × 64·(fanout+1) slots) and the per-node spans; an O(n²) regression
	// in either blows through this fence by orders of magnitude.
	const memBudget = 2 << 30
	if m.HeapHighWater > memBudget {
		t.Errorf("heap high-water %d bytes exceeds the %d-byte budget", m.HeapHighWater, memBudget)
	}
}

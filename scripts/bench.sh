#!/usr/bin/env bash
# bench.sh — run the repository benchmark suite once with allocation
# reporting and machine-readable output, and optionally (re)generate the
# committed allocation baseline.
#
#   scripts/bench.sh            # run benches, print output, gate against
#                               # the newest committed BENCH_PR*.json
#                               # (what CI does)
#   scripts/bench.sh --write    # run benches and rewrite that baseline
#                               # (do this when a PR intentionally moves
#                               # the allocation floor, and commit it)
#
# The baseline is resolved in exactly one place — benchguard's
# benchfmt.LatestBaseline picks the highest-numbered BENCH_PR<n>.json —
# so rotating the baseline means committing one new file; this script
# and CI pick it up with no edits.
#
# The run is `-benchtime 1x`: every benchmark executes its measured body
# once, which is enough for allocs/op (allocation counts are
# deterministic under the fixed seeds) and keeps the gate fast. ns/op
# from a 1x run is noisy and is recorded for trajectory only — the gate
# enforces allocs/op alone.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="$(mktemp)"
trap 'rm -f "$OUT"' EXIT

go test -run xxx -bench . -benchtime 1x -benchmem ./... | tee "$OUT"

if [[ "${1:-}" == "--write" ]]; then
  go run ./cmd/benchguard -write < "$OUT"
else
  go run ./cmd/benchguard < "$OUT"
fi

#!/usr/bin/env bash
# localnet.sh — spin up an n-process gossip cluster on the loopback and
# wait for every node to decode.
#
#   scripts/localnet.sh                 # 16 processes, k=32
#   scripts/localnet.sh -n 256 -k 64    # the ISSUE's scale target
#   scripts/localnet.sh -n 8 -m stream -g 8
#   HOSTILE=1 scripts/localnet.sh       # every node mutates its outgoing packets
#
# HOSTILE=1 passes -mutate "$MUTATE" (default: every op at low rates)
# to every node, so each process injects duplicated, stale-replayed,
# truncated and bit-flipped datagrams into the real sockets; the run
# must still decode everywhere, and the script then asserts the drop
# summary actually shows the mutated kinds being rejected (truncated
# plus the version/type/malformed parse buckets non-zero).
#
# Each node is one cmd/node OS process bound to 127.0.0.1:(base+id);
# node 0 is the bootstrap peer, everyone else learns the membership
# from it over the announce exchange. The script waits until every
# process prints its DONE line (all of them must say ok=true), then
# aggregates the per-node metric files into a packets/bits summary.
# Logs and metrics land under $OUTDIR (default ./localnet-logs), one
# .log and one .metrics file per node — CI uploads them as artifacts.
#
# Exit status: 0 iff all n nodes decoded and verified within -t.
set -euo pipefail
cd "$(dirname "$0")/.."

N=16
K=32
PAYLOAD=128
MODE=cluster
GENERATIONS=8
SEED=1
BASEPORT=17000
TIMEOUT=120s
INTERVAL=""
OUTDIR=${OUTDIR:-localnet-logs}
HOSTILE=${HOSTILE:-0}
MUTATE=${MUTATE:-dup:0.05,stale:0.05,trunc:0.03,flip:0.02,xgen:0.03}

usage() { grep '^#' "$0" | sed 's/^# \{0,1\}//'; exit 1; }
while getopts "n:k:p:m:g:s:b:t:i:o:h" opt; do
  case $opt in
    n) N=$OPTARG ;;
    k) K=$OPTARG ;;
    p) PAYLOAD=$OPTARG ;;
    m) MODE=$OPTARG ;;
    g) GENERATIONS=$OPTARG ;;
    s) SEED=$OPTARG ;;
    b) BASEPORT=$OPTARG ;;
    t) TIMEOUT=$OPTARG ;;
    i) INTERVAL=$OPTARG ;;
    o) OUTDIR=$OPTARG ;;
    *) usage ;;
  esac
done

# Pace emissions with the process count: hundreds of processes on few
# cores need a coarser tick or the schedulers thrash. ~50us per node,
# floored at 2ms, gives ~50ms at n=1024.
if [[ -z $INTERVAL ]]; then
  INTERVAL=$(( N * 50 > 2000 ? N * 50 : 2000 ))us
fi

# Finished nodes keep gossiping for LINGER so laggards can still
# decode. Large oversubscribed clusters bootstrap over a wide spread;
# a node that decodes early and exits after 5s would strand whoever
# joined last, so linger scales with n.
LINGER=$(( N > 256 ? 60 : 5 ))s

echo "localnet: n=$N k=$K mode=$MODE interval=$INTERVAL outdir=$OUTDIR"
if ((HOSTILE)); then echo "localnet: HOSTILE mode, mutate=$MUTATE"; fi
mkdir -p "$OUTDIR"
go build -o "$OUTDIR/node.bin" ./cmd/node
rm -f "$OUTDIR"/node*.log "$OUTDIR"/node*.metrics

PIDS=()
cleanup() {
  for pid in "${PIDS[@]:-}"; do kill "$pid" 2>/dev/null || true; done
  wait 2>/dev/null || true
}
trap cleanup EXIT

BOOT="127.0.0.1:$BASEPORT"
for ((id = 0; id < N; id++)); do
  args=(
    -id "$id" -n "$N" -addr "127.0.0.1:$((BASEPORT + id))"
    -mode "$MODE" -k "$K" -payload "$PAYLOAD" -seed "$SEED"
    -generations "$GENERATIONS"
    -interval "$INTERVAL" -timeout "$TIMEOUT" -linger "$LINGER"
    -metrics "$OUTDIR/node$id.metrics"
  )
  if ((id > 0)); then args+=(-bootstrap "$BOOT"); fi
  if ((HOSTILE)); then args+=(-mutate "$MUTATE"); fi
  # Node 0 answers every joiner's bootstrap ping; on an oversubscribed
  # host a fair 1/n CPU share can't absorb that, so it runs at higher
  # priority (best-effort: nice still launches if it can't renice).
  prio=()
  if ((id == 0)) && command -v nice >/dev/null; then prio=(nice -n -10); fi
  GOMAXPROCS=1 "${prio[@]}" "$OUTDIR/node.bin" "${args[@]}" >"$OUTDIR/node$id.log" 2>&1 &
  PIDS+=($!)
done

start=$SECONDS
fail=0
for ((id = 0; id < N; id++)); do
  if ! wait "${PIDS[$id]}"; then fail=1; fi
done
elapsed=$((SECONDS - start))

done_ok=$(grep -hc '^DONE .*ok=true' "$OUTDIR"/node*.log 2>/dev/null | awk '{s+=$1} END {print s+0}')
echo "localnet: $done_ok/$N nodes decoded in ${elapsed}s"

awk -F= '
  /^packets_out=/ {po+=$2} /^packets_in=/ {pi+=$2}
  /^bits_out=/ {bo+=$2} /^udp_datagrams=/ {dg+=$2}
  /^udp_drop_oversize=/ {drop["oversize"]+=$2}
  /^udp_drop_truncated=/ {drop["truncated"]+=$2}
  /^udp_drop_version=/ {drop["version"]+=$2}
  /^udp_drop_type=/ {drop["type"]+=$2}
  /^udp_drop_malformed=/ {drop["malformed"]+=$2}
  /^udp_drop_inbox_full=/ {drop["inbox-full"]+=$2}
  /^udp_drop_unknown_peer=/ {drop["unknown-peer"]+=$2}
  /^udp_write_errors=/ {drop["write-errors"]+=$2}
  END {
    n='"$N"'
    if (n > 0) printf "localnet: per node: %.0f packets out, %.0f datagrams in, %.0f bits out\n",
      po/n, dg/n, bo/n
    # Every socket drop bucket, so a lossy run is diagnosable from the
    # summary line alone; buckets are listed in wire-pipeline order.
    split("oversize truncated version type malformed inbox-full unknown-peer write-errors", order, " ")
    line = ""; total = 0
    for (i = 1; i <= 8; i++) { b = order[i]; total += drop[b]; line = line sprintf(" %s=%.0f", b, drop[b]) }
    printf "localnet: udp drops (total %.0f):%s\n", total, line
  }
' "$OUTDIR"/node*.metrics 2>/dev/null || true

if ((fail != 0 || done_ok != N)); then
  echo "localnet: FAILED — unfinished nodes:" >&2
  grep -L '^DONE .*ok=true' "$OUTDIR"/node*.log >&2 || true
  exit 1
fi

# A hostile run that shows zero drops in the mutated kinds means the
# injection silently did nothing — fail loudly, not greenly. Truncation
# must land in the truncated bucket; bit flips land in version (the
# recipe forces the version byte when a flip would still parse), type
# or malformed depending on where the flip hit.
if ((HOSTILE)); then
  awk -F= '
    /^udp_drop_truncated=/ {trunc+=$2}
    /^udp_drop_version=/ {parse+=$2}
    /^udp_drop_type=/ {parse+=$2}
    /^udp_drop_malformed=/ {parse+=$2}
    END {
      if (trunc == 0) { print "localnet: HOSTILE but no truncated drops" > "/dev/stderr"; exit 1 }
      if (parse == 0) { print "localnet: HOSTILE but no version/type/malformed drops" > "/dev/stderr"; exit 1 }
      printf "localnet: hostile drops confirmed: truncated=%.0f version+type+malformed=%.0f\n", trunc, parse
    }
  ' "$OUTDIR"/node*.metrics
fi
echo "localnet: OK"

package repro_test

import (
	"math/rand"
	"testing"

	"repro/internal/adversary"
	"repro/internal/dissem"
	"repro/internal/exp"
	"repro/internal/token"
)

// TestSmokeHeadlineResult is the repository's one-look sanity check: on
// a fully dynamic network, network-coded dissemination self-verifies
// and beats the token-forwarding baseline at n = 64 (the regime past
// the measured crossover), and the Section 5.2 end-game decodes from a
// single XOR.
func TestSmokeHeadlineResult(t *testing.T) {
	const n, d, b = 64, 8, 512
	dist := token.OnePerNode(n, d, rand.New(rand.NewSource(1)))

	res, err := dissem.GreedyForward(dist, dissem.Params{B: b, D: d, Seed: 1},
		adversary.NewRandomConnected(n, n/2, 1))
	if err != nil {
		t.Fatal(err)
	}
	// Theorem 2.1 baseline cost at these parameters: ceil(k/c)*n with
	// c = floor((b-16)/(64+8)) = 6 tokens per message.
	fwdRounds := (n + 5) / 6 * n
	if res.Rounds >= fwdRounds {
		t.Errorf("coding (%d rounds) did not beat forwarding (%d rounds) at n = %d",
			res.Rounds, fwdRounds, n)
	}

	if !exp.EndgameCodedDecodes(64, d, 1) {
		t.Error("end-game XOR decode failed")
	}
}
